// Shared harness for the paper-reproduction benches: machine header
// (Table II analog), repeat-and-min timing, and method sweeps.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/spkadd.hpp"
#include "matrix/csc.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace spkadd::bench {

/// Print the program banner + detected machine (every bench leads with the
/// Table II analog so results are interpretable).
void print_header(const std::string& title, const std::string& what);

/// Best-of-`repeats` wall time of `fn` in seconds (min, the conventional
/// benchmark statistic for compute kernels).
double time_best(int repeats, const std::function<void()>& fn);

/// Run one SpKAdd method over `inputs` and return best-of-`repeats` seconds.
double time_spkadd(const std::vector<CscMatrix<std::int32_t, double>>& inputs,
                   core::Method method, const core::Options& base_opts,
                   int repeats);

/// The method rows of Tables III/IV in paper order.
const std::vector<core::Method>& table_methods();

/// Shorthand: "0.0083" or "n/a" when seconds < 0 (method skipped).
std::string cell(double seconds);

}  // namespace spkadd::bench
