// Hybrid-vs-best-single-kernel skew sweep: the per-chunk dispatch bench.
//
// Four presets span the skew axis the per-chunk Fig. 2 surface exists for:
//   ER-uniform-k64  — uniform columns, hash everywhere is optimal;
//   ER-sparse-k4    — tiny k, very sparse columns: the heap corner;
//   RMAT-skew-k64   — power-law column loads, no dense hub;
//   RMAT-hub-k64    — one dense hub column among sparse ones, the case
//                     where whole-matrix dispatch (Method::Auto) commits
//                     every column to the hub's kernel.
// Every method result is checked bit-identical to Hash (all column
// kernels are strict left folds); the summary reports Hybrid vs the best
// single kernel and vs whole-matrix Auto per preset, and `--json` emits
// the SampleLog document scripts/bench_smoke.sh commits as
// BENCH_hybrid.json.
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cachesim/cache_hierarchy.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

std::string gnnzps(std::size_t nnz, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nnz) / seconds / 1e9);
  return buf;
}

std::string pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_hybrid",
                      "per-chunk hybrid dispatch vs single-kernel methods");
  const auto* rows = cli.add_int("rows", 1 << 15, "rows per matrix (m)");
  const auto* cols = cli.add_int("cols", 64, "cols per matrix (n)");
  const auto* d = cli.add_int("d", 8, "avg nonzeros per column per addend");
  const auto* k = cli.add_int("k", 64, "addends in the k=64 presets");
  const auto* repeats = cli.add_int("repeats", 3, "timing repetitions");
  const auto* threads = cli.add_int("threads", 0, "OpenMP threads (0=omp)");
  const auto* cache_spec = cli.add_string(
      "cache-spec", "",
      "pin the modeled hierarchy, e.g. L1:32K:8,L2:1M:16,LLC:8M:16; the "
      "last level's capacity drives the decision surface (empty = "
      "detected)");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;
  if (*threads < 0) {
    std::cerr << "bench_hybrid: --threads must be >= 0\n";
    return 1;
  }
  std::size_t llc_bytes = 0;
  if (!cache_spec->empty()) {
    try {
      const auto hier = cachesim::HierarchySpec::from_cli_spec(*cache_spec);
      llc_bytes = static_cast<std::size_t>(hier.levels.back().bytes);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bench_hybrid: bad --cache-spec: " << e.what() << "\n";
      return 1;
    }
  }

  bench::print_header(
      "Per-chunk hybrid dispatch (Method::Hybrid) skew sweep",
      "per-chunk Fig. 2 dispatch should track the best single kernel on "
      "every preset and beat whole-matrix Auto once skew makes one kernel "
      "wrong for most columns");
  bench::SampleLog log("bench_hybrid");

  const std::string shape =
      "rows=" + std::to_string(*rows) + " cols=" + std::to_string(*cols) +
      " d=" + std::to_string(*d) + " k=" + std::to_string(*k) +
      " llc=" + std::to_string(llc_bytes);

  const std::vector<bench::SkewPreset> presets =
      bench::make_skew_presets(*rows, *cols, *d, static_cast<int>(*k));

  const std::vector<core::Method> singles = {
      core::Method::Heap, core::Method::Spa, core::Method::Hash,
      core::Method::SlidingHash, core::Method::DenseAcc};

  bool all_exact = true;
  util::TablePrinter table(
      {"preset", "method", "Gnnz/s", "chunks h/s/H/W/D"});
  util::TablePrinter verdict(
      {"preset", "best single", "hybrid vs best", "hybrid vs Auto"});

  for (const bench::SkewPreset& p : presets) {
    const std::size_t in_nnz = gen::total_input_nnz(p.inputs);
    core::Options base;
    base.threads = static_cast<int>(*threads);
    base.llc_bytes = llc_bytes;

    core::Options hash_opts = base;
    hash_opts.method = core::Method::Hash;
    const Csc expected = core::spkadd(p.inputs, hash_opts);

    double best_single = -1.0;
    std::string best_name;
    double t_auto = 0.0, t_hybrid = 0.0;

    std::vector<core::Method> methods = singles;
    methods.push_back(core::Method::Auto);
    methods.push_back(core::Method::Hybrid);
    for (const core::Method m : methods) {
      core::Options opts = base;
      opts.method = m;
      Csc out;
      const double t = bench::time_median(
          static_cast<int>(*repeats),
          [&] { out = core::spkadd(p.inputs, opts); });
      if (!(out == expected)) {
        std::cerr << "MISMATCH: " << core::method_name(m) << " on " << p.name
                  << " is not bit-identical to Hash\n";
        all_exact = false;
      }
      std::string mix = "-";
      if (m == core::Method::Hybrid) {
        core::OpCounters counters;
        core::Options copts = opts;
        copts.counters = &counters;
        (void)core::spkadd(p.inputs, copts);
        mix = counters.chunk_mix();
      }
      table.add_row(
          {p.name, core::method_name(m), gnnzps(in_nnz, t), mix});
      log.add(p.name + "/" + core::method_name(m),
              shape + (mix == "-" ? "" : " chunks=" + mix), t, in_nnz);
      if (m == core::Method::Auto) {
        t_auto = t;
      } else if (m == core::Method::Hybrid) {
        t_hybrid = t;
      } else if (best_single < 0 || t < best_single) {
        best_single = t;
        best_name = core::method_name(m);
      }
    }
    verdict.add_row({p.name, best_name, pct(t_hybrid / best_single),
                     pct(t_hybrid / t_auto)});
  }

  table.print(std::cout);
  std::cout << "\nHybrid overhead vs the best single kernel (negative = "
               "hybrid faster) and vs whole-matrix Auto:\n";
  verdict.print(std::cout);
  std::cout << "\nexpected shape: hybrid within a few percent of the best "
               "single kernel on every preset and ahead of Auto once the "
               "hub/skew presets make whole-matrix dispatch pick wrong for "
               "most columns.\n";
  if (!json->empty() && !log.write(*json)) return 1;
  return all_exact ? 0 : 1;
}
