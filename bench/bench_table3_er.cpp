// Reproduces Table III: runtime of every SpKAdd algorithm on ER matrices
// for a (d, k) grid. Default sizes are laptop-scale (the paper used
// m=4M-row matrices on a 48-core Skylake); --rows/--cols/--full scale up.
// Cells whose estimated merge work exceeds --op-budget print "n/a",
// mirroring the paper's "could not run" entries.
#include <iostream>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

int main(int argc, char** argv) {
  util::CliParser cli("bench_table3_er", "Table III: SpKAdd on ER matrices");
  const auto* rows = cli.add_int("rows", 1 << 16, "rows per matrix (m)");
  const auto* cols = cli.add_int("cols", 64, "cols per matrix (n)");
  const auto* repeats =
      cli.add_int("repeats", 2, "timing repetitions (best-of)");
  const auto* full = cli.add_flag("full", "paper-scale d values (slow)");
  const auto* op_budget = cli.add_int(
      "op-budget", 2'000'000'000,
      "skip a cell when estimated merge ops exceed this");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header("Table III — SpKAdd runtime (seconds), ER matrices",
                      "paper Table III (Intel Skylake 48 cores; shapes, not "
                      "absolute numbers, are the reproduction target)");

  const std::vector<std::int64_t> ds =
      *full ? std::vector<std::int64_t>{16, 1024, 8192}
            : std::vector<std::int64_t>{16, 256, 2048};
  const std::vector<int> ks{4, 32, 128};

  std::vector<std::string> headers{"Algorithm"};
  for (auto d : ds)
    for (int k : ks)
      headers.push_back("d=" + std::to_string(d) + ",k=" + std::to_string(k));
  util::TablePrinter table(headers);

  // Generate all workloads once (generation dwarfs timing otherwise).
  std::vector<std::vector<CscMatrix<std::int32_t, double>>> workloads;
  for (auto d : ds) {
    for (int k : ks) {
      gen::WorkloadSpec spec;
      spec.pattern = gen::Pattern::ER;
      spec.rows = *rows;
      spec.cols = *cols;
      spec.avg_nnz_per_col = d;
      spec.k = k;
      spec.seed = 1000 + static_cast<std::uint64_t>(d) * 10 +
                  static_cast<std::uint64_t>(k);
      workloads.push_back(gen::make_workload(spec));
      std::cerr << "generated " << spec.describe() << "\n";
    }
  }

  for (core::Method method : bench::table_methods()) {
    std::vector<std::string> row{core::method_name(method)};
    std::size_t w = 0;
    for ([[maybe_unused]] auto d : ds) {
      for (int k : ks) {
        const auto& inputs = workloads[w++];
        // Incremental methods re-stream the growing partial sum: estimated
        // work ~ k/2 * total input nnz. Skip cells over budget like the
        // paper's "could not run".
        const double est =
            (method == core::Method::TwoWayIncremental ||
             method == core::Method::ReferenceIncremental)
                ? 0.5 * static_cast<double>(k) *
                      static_cast<double>(gen::total_input_nnz(inputs))
                : static_cast<double>(gen::total_input_nnz(inputs));
        if (est > static_cast<double>(*op_budget)) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(bench::cell(bench::time_spkadd(
            inputs, method, core::Options{}, static_cast<int>(*repeats))));
      }
    }
    table.add_row(std::move(row));
    std::cerr << "done: " << core::method_name(method) << "\n";
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: Hash fastest for small d; Sliding Hash "
               "overtakes at large d*k; 2-way Incremental worst and growing "
               "with k; Heap/2-way Tree carry the lg(k) factor; SPA "
               "competitive only at high density.\n";
  return 0;
}
