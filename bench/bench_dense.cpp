// Representation-adaptivity bench: the dense-accumulation kernel and the
// Accumulator's sparse<->dense promotion machinery.
//
// Two sweeps:
//   kernel face-off   — SPA vs Hash vs DenseAcc one-shot SpKAdd across a
//                       column-density axis (union fill from sparse to
//                       saturated). The dense kernel's structural win is
//                       sorted-by-construction emission (bitmap scan, no
//                       radix sort), so it should pull ahead of the SPA as
//                       columns saturate. Bit-identity to Hash is a hard
//                       gate on every cell.
//   promotion sweep   — streaming Accumulator folds across a
//                       (promote_fill x k x density) grid, timing the full
//                       stream + finalize and checking the promoted run's
//                       snapshot is byte-identical to a never-promoted
//                       (DensePolicy disabled) run. This is the
//                       calibration data behind DensePolicy::promote_fill.
//
// `--json` emits the SampleLog document scripts/bench_smoke.sh commits as
// BENCH_dense.json; `--enforce-win` turns the "DenseAcc beats SPA on the
// densest preset" verdict into the exit code (advisory otherwise: CI boxes
// are noisy).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/accumulator.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

std::string gnnzps(std::size_t nnz, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nnz) / seconds / 1e9);
  return buf;
}

std::string ratio_cell(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::vector<Csc> density_workload(std::int64_t rows, std::int64_t cols,
                                  double density, int k,
                                  std::uint64_t seed) {
  gen::WorkloadSpec spec;
  spec.pattern = gen::Pattern::ER;
  spec.rows = rows;
  spec.cols = cols;
  const auto d = static_cast<std::int64_t>(density * static_cast<double>(rows));
  spec.avg_nnz_per_col = d > 0 ? d : 1;
  spec.k = k;
  spec.seed = seed;
  return gen::make_workload(spec);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_dense",
                      "dense-accumulation kernel and promotion sweep");
  const auto* rows = cli.add_int("rows", 1 << 12, "rows per matrix (m)");
  const auto* cols = cli.add_int("cols", 32, "cols per matrix (n)");
  const auto* k = cli.add_int("k", 16, "addends per workload (power of two)");
  const auto* repeats = cli.add_int("repeats", 3, "timing repetitions");
  const auto* threads = cli.add_int("threads", 0, "OpenMP threads (0=omp)");
  const auto* enforce = cli.add_flag(
      "enforce-win",
      "fail (exit 1) unless DenseAcc beats the SPA on the densest preset");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header(
      "Dense accumulation (ColumnKernel::DenseAcc) density + promotion sweep",
      "the bitmap accumulator emits sorted columns without a radix sort, so "
      "it should overtake the SPA as column fill saturates; adaptive "
      "promotion must never change snapshot bytes");
  bench::SampleLog log("bench_dense");

  const std::string shape =
      "rows=" + std::to_string(*rows) + " cols=" + std::to_string(*cols) +
      " k=" + std::to_string(*k);

  core::Options base;
  base.threads = static_cast<int>(*threads);

  // ---- kernel face-off across the density axis --------------------------
  const std::vector<double> densities = {0.05, 0.25, 0.5, 1.0};
  const std::vector<core::Method> methods = {
      core::Method::Spa, core::Method::Hash, core::Method::DenseAcc};

  bool all_exact = true;
  bool dense_wins_densest = false;
  util::TablePrinter table(
      {"density", "method", "Gnnz/s", "vs spa"});

  for (const double density : densities) {
    const auto inputs = density_workload(*rows, *cols, density,
                                         static_cast<int>(*k), 6100);
    const std::size_t in_nnz = gen::total_input_nnz(inputs);
    core::Options hash_opts = base;
    hash_opts.method = core::Method::Hash;
    const Csc expected = core::spkadd(inputs, hash_opts);

    double t_spa = 0.0;
    for (const core::Method m : methods) {
      core::Options opts = base;
      opts.method = m;
      Csc out;
      const double t = bench::time_median(
          static_cast<int>(*repeats),
          [&] { out = core::spkadd(inputs, opts); });
      if (!(out == expected)) {
        std::cerr << "MISMATCH: " << core::method_name(m) << " at density "
                  << density << " is not bit-identical to Hash\n";
        all_exact = false;
      }
      if (m == core::Method::Spa) t_spa = t;
      const double vs_spa = t > 0.0 ? t_spa / t : 0.0;
      if (m == core::Method::DenseAcc && density == densities.back())
        dense_wins_densest = t < t_spa;
      char dens[16];
      std::snprintf(dens, sizeof(dens), "%.2f", density);
      table.add_row({dens, core::method_name(m), gnnzps(in_nnz, t),
                     m == core::Method::Spa ? "1.00x" : ratio_cell(vs_spa)});
      log.add("density=" + std::string(dens) + "/" + core::method_name(m),
              shape + " density=" + dens, t, in_nnz);
    }
  }
  table.print(std::cout);

  // ---- promotion-threshold sweep ----------------------------------------
  std::cout << "\nAccumulator promotion sweep (streaming fold + finalize; "
               "snapshot must be byte-identical to DensePolicy off):\n";
  util::TablePrinter ptable({"fill", "k", "density", "stream s", "vs off",
                             "promotions"});
  const std::vector<double> fills = {-1.0, 0.25, 0.5, 0.75};  // -1 = off
  const std::vector<int> ks = {static_cast<int>(*k) / 2,
                               static_cast<int>(*k)};
  const std::vector<double> pdens = {0.25, 1.0};

  for (const int kk : ks) {
    for (const double density : pdens) {
      const auto inputs =
          density_workload(*rows, *cols, density, kk, 6200);
      // Reference: promotion disabled.
      core::Options off = base;
      off.dense.enabled = false;
      Csc expected;
      double t_off = 0.0;
      {
        core::Accumulator<> acc(static_cast<std::int32_t>(*rows),
                                static_cast<std::int32_t>(*cols), off, 4);
        t_off = bench::time_median(static_cast<int>(*repeats), [&] {
          acc.add_batch(std::span<const Csc>(inputs));
          expected = acc.finalize();
        });
      }
      for (const double fill : fills) {
        core::Options opts = base;
        if (fill < 0) {
          opts.dense.enabled = false;
        } else {
          opts.dense.promote_fill = fill;
          opts.dense.min_rows = 1;
        }
        core::Accumulator<> acc(static_cast<std::int32_t>(*rows),
                                static_cast<std::int32_t>(*cols), opts, 4);
        Csc out;
        const double t = bench::time_median(static_cast<int>(*repeats), [&] {
          acc.add_batch(std::span<const Csc>(inputs));
          out = acc.finalize();
        });
        if (!(out == expected)) {
          std::cerr << "MISMATCH: promote_fill=" << fill << " k=" << kk
                    << " density=" << density
                    << " snapshot differs from DensePolicy-off run\n";
          all_exact = false;
        }
        char fbuf[16], dbuf[16];
        std::snprintf(fbuf, sizeof(fbuf), fill < 0 ? "off" : "%.2f", fill);
        std::snprintf(dbuf, sizeof(dbuf), "%.2f", density);
        // Promotions from the timed laps accumulate; report per-stream.
        const auto laps = static_cast<std::uint64_t>(*repeats) + 0;
        const std::uint64_t promos =
            acc.stats().dense_promotions / std::max<std::uint64_t>(laps, 1);
        ptable.add_row({fbuf, std::to_string(kk), dbuf, bench::cell(t),
                        ratio_cell(t > 0.0 ? t_off / t : 0.0),
                        std::to_string(promos)});
        log.add("promote/fill=" + std::string(fbuf) + "/k=" +
                    std::to_string(kk) + "/density=" + dbuf,
                shape + " fill=" + fbuf + " k=" + std::to_string(kk) +
                    " density=" + dbuf,
                t);
      }
    }
  }
  ptable.print(std::cout);

  std::cout << "\nDenseAcc beats SPA on the densest preset: "
            << (dense_wins_densest ? "yes" : "NO") << "\n";
  if (!json->empty() && !log.write(*json)) return 1;
  if (!all_exact) return 1;
  return (*enforce && !dense_wins_densest) ? 1 : 0;
}
