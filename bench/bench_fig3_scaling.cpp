// Reproduces Fig. 3: strong scaling of the SpKAdd algorithms over thread
// counts, for (a) ER, (b) RMAT, and (c) SpGEMM intermediate matrices (the
// Eukarya surrogate). On a single-core host the sweep is flat by
// construction — the thread machinery still runs and the relative method
// ordering at each thread count is the reproducible signal.
#include <iostream>

#include "bench_common.hpp"
#include "gen/rmat.hpp"
#include "gen/workload.hpp"
#include "matrix/block.hpp"
#include "spgemm/local_spgemm.hpp"
#include "util/bit_ops.hpp"
#include "util/cli.hpp"
#include "util/thread_control.hpp"

using namespace spkadd;

namespace {

using Inputs = std::vector<CscMatrix<std::int32_t, double>>;

void scaling_case(const std::string& title, const Inputs& inputs,
                  const std::vector<int>& thread_counts, int repeats) {
  std::cout << "### " << title << "\n";
  std::vector<std::string> headers{"Algorithm"};
  for (int t : thread_counts) headers.push_back("T=" + std::to_string(t));
  util::TablePrinter table(headers);

  const std::vector<core::Method> methods{
      core::Method::Hash, core::Method::SlidingHash, core::Method::TwoWayTree,
      core::Method::ReferenceTree, core::Method::Spa, core::Method::Heap};
  for (core::Method m : methods) {
    std::vector<std::string> row{core::method_name(m)};
    for (int t : thread_counts) {
      core::Options opts;
      opts.threads = t;
      row.push_back(bench::cell(bench::time_spkadd(inputs, m, opts, repeats)));
    }
    table.add_row(std::move(row));
    std::cerr << "done: " << core::method_name(m) << "\n";
  }
  table.print(std::cout);
  std::cout << "\n";
}

/// Fig. 3(c)'s workload: the k intermediate products of a distributed
/// SpGEMM — reproduced by squaring a protein-similarity-shaped RMAT
/// surrogate blockwise and keeping the per-stage products.
Inputs spgemm_intermediates(int k, std::int64_t scale_rows) {
  gen::RmatParams p = gen::RmatParams::g500(
      static_cast<int>(util::log2_floor(util::next_pow2(
          static_cast<std::uint64_t>(scale_rows)))),
      static_cast<int>(util::log2_floor(util::next_pow2(
          static_cast<std::uint64_t>(scale_rows)))),
      static_cast<std::uint64_t>(scale_rows) * 48, 77);
  const auto m = gen::rmat_csc(p);
  // k stage products A(:, s-slab) * A(s-slab, :) restricted to one process
  // column, mirroring what one SUMMA process reduces.
  Inputs products;
  const auto bounds = partition_bounds(m.cols(), k);
  spgemm::SpgemmOptions opts;
  for (int s = 0; s < k; ++s) {
    const auto a_blk =
        extract_block(m, 0, m.rows(), bounds[static_cast<std::size_t>(s)],
                      bounds[static_cast<std::size_t>(s) + 1]);
    const auto b_blk =
        extract_block(m, bounds[static_cast<std::size_t>(s)],
                      bounds[static_cast<std::size_t>(s) + 1], 0,
                      std::min<std::int32_t>(m.cols(), 64));
    products.push_back(spgemm::multiply(a_blk, b_blk, opts));
  }
  return products;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig3_scaling", "Fig. 3: strong scaling");
  const auto* rows = cli.add_int("rows", 1 << 16, "rows per matrix");
  const auto* k = cli.add_int("k", 32, "number of addends (paper: 128)");
  const auto* repeats = cli.add_int("repeats", 2, "timing repetitions");
  const auto* max_threads =
      cli.add_int("max-threads", 0, "0 = 2 x detected cores");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header(
      "Fig. 3 — strong scaling of SpKAdd algorithms",
      "paper Fig. 3 (a) ER, (b) RMAT, (c) Eukarya SpGEMM intermediates");

  std::vector<int> thread_counts;
  const int limit = *max_threads > 0
                        ? static_cast<int>(*max_threads)
                        : 2 * util::current_max_threads();
  for (int t = 1; t <= limit; t *= 2) thread_counts.push_back(t);

  {
    gen::WorkloadSpec spec;
    spec.pattern = gen::Pattern::ER;
    spec.rows = *rows;
    spec.cols = 32;
    spec.avg_nnz_per_col = 256;
    spec.k = static_cast<int>(*k);
    const auto inputs = gen::make_workload(spec);
    scaling_case("(a) ER, d=256, k=" + std::to_string(*k), inputs,
                 thread_counts, static_cast<int>(*repeats));
  }
  {
    gen::WorkloadSpec spec;
    spec.pattern = gen::Pattern::RMAT;
    spec.rows = *rows;
    spec.cols = 128;
    spec.avg_nnz_per_col = 128;
    spec.k = static_cast<int>(*k);
    const auto inputs = gen::make_workload(spec);
    scaling_case("(b) RMAT, d=128, k=" + std::to_string(*k), inputs,
                 thread_counts, static_cast<int>(*repeats));
  }
  {
    const auto inputs = spgemm_intermediates(16, 1 << 12);
    scaling_case("(c) SpGEMM intermediates (Eukarya surrogate), k=16", inputs,
                 thread_counts, static_cast<int>(*repeats));
  }
  std::cout << "note: on a single-core container the curves are flat; on a "
               "multicore host k-way methods scale near-linearly while SPA "
               "degrades (O(T*m) scratch) and 2-way methods saturate.\n";
  return 0;
}
