// Reproduces Table V: last-level cache misses of hash vs sliding hash for
// the four Fig. 4 cases, measured on the trace-driven cache simulator (the
// paper used Cachegrind; see DESIGN.md for the substitution argument).
#include <iostream>

#include "bench_common.hpp"
#include "cachesim/traced_spkadd.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

int main(int argc, char** argv) {
  util::CliParser cli("bench_table5_cachemiss",
                      "Table V: simulated LL cache misses, hash vs sliding");
  const auto* scale = cli.add_int("scale", 14, "log2 rows of the big cases");
  const auto* llc_mb = cli.add_int(
      "llc-mb", 8,
      "modeled LLC size (MB); small enough that the scaled-down workloads "
      "overflow it the way the paper's 4M-row ones overflowed 32MB");
  const auto* threads =
      cli.add_int("threads", 48, "modeled threads sharing the LLC (paper: 48)");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header("Table V — LL cache misses (simulated)",
                      "paper Table V: sliding hash should miss far less than "
                      "plain hash in cases (b)/(c) and be a wash in (a)/(d)");

  struct Case {
    std::string name;
    gen::Pattern pattern;
    std::int64_t rows, cols, d;
    int k;
  };
  const std::int64_t big = 1ll << *scale;
  const std::vector<Case> cases{
      {"(a) ER small", gen::Pattern::ER, big / 4, 32, 64, 32},
      {"(b) ER dense", gen::Pattern::ER, big, 8, 2048, 32},
      {"(c) RMAT", gen::Pattern::RMAT, big, 32, 512, 32},
      {"(d) high-cf RMAT", gen::Pattern::RMAT, big / 16, 16, 256, 64},
  };

  util::TablePrinter table(
      {"Case", "Sliding Hash misses", "Hash misses", "sliding/hash"});
  for (const auto& c : cases) {
    gen::WorkloadSpec spec;
    spec.pattern = c.pattern;
    spec.rows = c.rows;
    spec.cols = c.cols;
    spec.avg_nnz_per_col = c.d;
    spec.k = c.k;
    spec.seed = 5000;
    const auto inputs = gen::make_workload(spec);

    cachesim::TraceConfig cfg;
    cfg.cache.bytes = static_cast<std::uint64_t>(*llc_mb) << 20;
    cfg.threads = static_cast<int>(*threads);
    cfg.sliding = false;
    const auto plain = cachesim::trace_hash_spkadd(
        std::span<const CscMatrix<std::int32_t, double>>(inputs), cfg);
    cfg.sliding = true;
    const auto sliding = cachesim::trace_hash_spkadd(
        std::span<const CscMatrix<std::int32_t, double>>(inputs), cfg);

    const double ratio =
        plain.total_misses() == 0
            ? 1.0
            : static_cast<double>(sliding.total_misses()) /
                  static_cast<double>(plain.total_misses());
    table.add_row({c.name,
                   util::TablePrinter::fmt_count(sliding.total_misses()),
                   util::TablePrinter::fmt_count(plain.total_misses()),
                   util::TablePrinter::fmt_ratio(ratio)});
    std::cerr << "done: " << c.name << "\n";
  }
  table.print(std::cout);
  std::cout << "\npaper reference (Skylake, Cachegrind): (a) 1.8M vs 1.4M, "
               "(b) 214M vs 734M, (c) 344M vs 409M, (d) 150M vs 152M — the "
               "reproduction target is ratio < 1 for (b)/(c), ~1 for "
               "(a)/(d).\n";
  return 0;
}
