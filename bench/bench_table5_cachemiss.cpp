// Reproduces Table V: cache misses of hash vs sliding hash for the four
// Fig. 4 cases, measured on the trace-driven cache simulator (the paper
// used Cachegrind; see DESIGN.md for the substitution argument). With a
// multi-level --cache-spec the table reports per-level (L1/L2/LLC) miss
// columns — the Table V number is the last (LLC) column; the inner levels
// show where the sliding partition's reuse actually lands.
#include <iostream>
#include <stdexcept>

#include "bench_common.hpp"
#include "cachesim/traced_spkadd.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

int main(int argc, char** argv) {
  util::CliParser cli("bench_table5_cachemiss",
                      "Table V: simulated cache misses, hash vs sliding");
  const auto* scale = cli.add_int("scale", 14, "log2 rows of the big cases");
  const auto* cache_spec = cli.add_string(
      "cache-spec", "LLC:8M:16",
      "modeled hierarchy, e.g. L1:32K:8,L2:1M:16,LLC:8M:16; the default "
      "single 8MB level is small enough that the scaled-down workloads "
      "overflow it the way the paper's 4M-row ones overflowed 32MB");
  const auto* threads =
      cli.add_int("threads", 48, "modeled threads sharing the LLC (paper: 48)");
  if (!cli.parse(argc, argv)) return 1;

  cachesim::HierarchySpec hier;
  try {
    hier = cachesim::HierarchySpec::from_cli_spec(*cache_spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_table5_cachemiss: bad --cache-spec: " << e.what()
              << "\n";
    return 1;
  }

  bench::print_header("Table V — cache misses (simulated)",
                      "paper Table V: sliding hash should miss far less than "
                      "plain hash in cases (b)/(c) and be a wash in (a)/(d)");
  std::cout << "hierarchy: " << hier.to_string() << "\n\n";

  struct Case {
    std::string name;
    gen::Pattern pattern;
    std::int64_t rows, cols, d;
    int k;
  };
  const std::int64_t big = 1ll << *scale;
  const std::vector<Case> cases{
      {"(a) ER small", gen::Pattern::ER, big / 4, 32, 64, 32},
      {"(b) ER dense", gen::Pattern::ER, big, 8, 2048, 32},
      {"(c) RMAT", gen::Pattern::RMAT, big, 32, 512, 32},
      {"(d) high-cf RMAT", gen::Pattern::RMAT, big / 16, 16, 256, 64},
  };

  // One miss column per modeled level per kernel, LLC last — that final
  // pair is the Table V comparison.
  std::vector<std::string> head{"Case"};
  for (const auto& l : hier.levels) head.push_back("sliding " + l.name);
  for (const auto& l : hier.levels) head.push_back("hash " + l.name);
  head.push_back("sliding/hash (" + hier.levels.back().name + ")");
  util::TablePrinter table(head);

  for (const auto& c : cases) {
    gen::WorkloadSpec spec;
    spec.pattern = c.pattern;
    spec.rows = c.rows;
    spec.cols = c.cols;
    spec.avg_nnz_per_col = c.d;
    spec.k = c.k;
    spec.seed = 5000;
    const auto inputs = gen::make_workload(spec);

    cachesim::KernelTraceConfig cfg;
    cfg.hierarchy = hier;
    cfg.threads = static_cast<int>(*threads);
    cfg.kernel = core::ColumnKernel::Hash;
    const auto plain = cachesim::trace_kernel_spkadd(
        std::span<const CscMatrix<std::int32_t, double>>(inputs), cfg);
    cfg.kernel = core::ColumnKernel::SlidingHash;
    const auto sliding = cachesim::trace_kernel_spkadd(
        std::span<const CscMatrix<std::int32_t, double>>(inputs), cfg);

    const std::size_t last = hier.levels.size() - 1;
    const double ratio =
        plain.level_misses(last) == 0
            ? 1.0
            : static_cast<double>(sliding.level_misses(last)) /
                  static_cast<double>(plain.level_misses(last));
    std::vector<std::string> row{c.name};
    for (std::size_t i = 0; i < hier.levels.size(); ++i)
      row.push_back(util::TablePrinter::fmt_count(sliding.level_misses(i)));
    for (std::size_t i = 0; i < hier.levels.size(); ++i)
      row.push_back(util::TablePrinter::fmt_count(plain.level_misses(i)));
    row.push_back(util::TablePrinter::fmt_ratio(ratio));
    table.add_row(row);
    std::cerr << "done: " << c.name << "\n";
  }
  table.print(std::cout);
  std::cout << "\npaper reference (Skylake, Cachegrind): (a) 1.8M vs 1.4M, "
               "(b) 214M vs 734M, (c) 344M vs 409M, (d) 150M vs 152M — the "
               "reproduction target is LLC ratio < 1 for (b)/(c), ~1 for "
               "(a)/(d).\n";
  return 0;
}
