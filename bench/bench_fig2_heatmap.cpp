// Reproduces Fig. 2: for every (k, d) cell, which algorithm is fastest?
// Prints one grid for ER and one for RMAT with the winning method per cell
// (the paper's color map, rendered as text).
#include <iostream>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

namespace {

core::Method winner(const std::vector<CscMatrix<std::int32_t, double>>& inputs,
                    int repeats, double op_budget) {
  double best = -1;
  core::Method best_m = core::Method::Hash;
  for (core::Method m : bench::table_methods()) {
    const double est =
        (m == core::Method::TwoWayIncremental ||
         m == core::Method::ReferenceIncremental)
            ? 0.5 * static_cast<double>(inputs.size()) *
                  static_cast<double>(gen::total_input_nnz(inputs))
            : static_cast<double>(gen::total_input_nnz(inputs));
    if (est > op_budget) continue;
    const double t = bench::time_spkadd(inputs, m, core::Options{}, repeats);
    if (best < 0 || t < best) {
      best = t;
      best_m = m;
    }
  }
  return best_m;
}

void heatmap(gen::Pattern pattern, const std::vector<int>& ks,
             const std::vector<std::int64_t>& ds, std::int64_t rows,
             std::int64_t cols, int repeats, double op_budget) {
  std::vector<std::string> headers{"k \\ d"};
  for (auto d : ds) headers.push_back(std::to_string(d));
  util::TablePrinter table(headers);
  for (int k : ks) {
    std::vector<std::string> row{std::to_string(k)};
    for (auto d : ds) {
      gen::WorkloadSpec spec;
      spec.pattern = pattern;
      spec.rows = rows;
      spec.cols = cols;
      spec.avg_nnz_per_col = d;
      spec.k = k;
      spec.seed = 3000 + static_cast<std::uint64_t>(d) * 100 +
                  static_cast<std::uint64_t>(k);
      const auto inputs = gen::make_workload(spec);
      row.push_back(core::method_name(winner(inputs, repeats, op_budget)));
      std::cerr << "." << std::flush;
    }
    table.add_row(std::move(row));
  }
  std::cerr << "\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig2_heatmap",
                      "Fig. 2: best algorithm per (k, d) cell");
  const auto* rows = cli.add_int("rows", 1 << 15, "rows per matrix");
  const auto* cols = cli.add_int("cols", 32, "cols per matrix");
  const auto* repeats = cli.add_int("repeats", 2, "timing repetitions");
  const auto* op_budget =
      cli.add_int("op-budget", 1'000'000'000, "skip slower cells");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header("Fig. 2 — best-performing algorithm per (k, d)",
                      "paper Fig. 2 heat maps (hash family should dominate; "
                      "sliding hash appears toward large k*d; tree/heap can "
                      "win the small-k RMAT corner)");

  const std::vector<int> ks{4, 8, 16, 32, 64, 128};
  std::cout << "## ER\n";
  heatmap(gen::Pattern::ER, ks, {16, 64, 256, 1024, 2048}, *rows, *cols,
          static_cast<int>(*repeats), static_cast<double>(*op_budget));
  std::cout << "\n## RMAT\n";
  heatmap(gen::Pattern::RMAT, ks, {16, 64, 256, 512}, *rows, *cols,
          static_cast<int>(*repeats), static_cast<double>(*op_budget));
  return 0;
}
