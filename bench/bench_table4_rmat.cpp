// Reproduces Table IV: runtime of every SpKAdd algorithm on RMAT
// (Graph500-seeded, skewed) matrices for a (d, k) grid. Same conventions as
// bench_table3_er; "n/a" mirrors the paper's "could not run" cells.
#include <iostream>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

int main(int argc, char** argv) {
  util::CliParser cli("bench_table4_rmat",
                      "Table IV: SpKAdd on RMAT (skewed) matrices");
  const auto* rows = cli.add_int("rows", 1 << 16, "rows per matrix (m)");
  const auto* cols = cli.add_int("cols", 256, "cols per matrix (n)");
  const auto* repeats = cli.add_int("repeats", 2, "timing repetitions");
  const auto* op_budget = cli.add_int(
      "op-budget", 2'000'000'000,
      "skip a cell when estimated merge ops exceed this");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header("Table IV — SpKAdd runtime (seconds), RMAT matrices",
                      "paper Table IV (skewed columns stress dynamic load "
                      "balancing and per-column hash table sizes)");

  const std::vector<std::int64_t> ds{16, 64, 512};
  const std::vector<int> ks{4, 32, 128};

  std::vector<std::string> headers{"Algorithm"};
  for (auto d : ds)
    for (int k : ks)
      headers.push_back("d=" + std::to_string(d) + ",k=" + std::to_string(k));
  util::TablePrinter table(headers);

  std::vector<std::vector<CscMatrix<std::int32_t, double>>> workloads;
  for (auto d : ds) {
    for (int k : ks) {
      gen::WorkloadSpec spec;
      spec.pattern = gen::Pattern::RMAT;
      spec.rows = *rows;
      spec.cols = *cols;
      spec.avg_nnz_per_col = d;
      spec.k = k;
      spec.seed = 2000 + static_cast<std::uint64_t>(d) * 10 +
                  static_cast<std::uint64_t>(k);
      workloads.push_back(gen::make_workload(spec));
      std::cerr << "generated " << spec.describe() << "\n";
    }
  }

  for (core::Method method : bench::table_methods()) {
    std::vector<std::string> row{core::method_name(method)};
    std::size_t w = 0;
    for ([[maybe_unused]] auto d : ds) {
      for (int k : ks) {
        const auto& inputs = workloads[w++];
        const double est =
            (method == core::Method::TwoWayIncremental ||
             method == core::Method::ReferenceIncremental)
                ? 0.5 * static_cast<double>(k) *
                      static_cast<double>(gen::total_input_nnz(inputs))
                : static_cast<double>(gen::total_input_nnz(inputs));
        if (est > static_cast<double>(*op_budget)) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(bench::cell(bench::time_spkadd(
            inputs, method, core::Options{}, static_cast<int>(*repeats))));
      }
    }
    table.add_row(std::move(row));
    std::cerr << "done: " << core::method_name(method) << "\n";
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: Hash/Sliding Hash best for k >= 8; at k=4 "
               "the 2-way Tree / Heap corner of Fig. 2 can win because one "
               "dense column can simply be streamed; MKL-style baselines "
               "trail throughout.\n";
  return 0;
}
