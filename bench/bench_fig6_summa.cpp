// Reproduces Fig. 6: computational phases of distributed SpGEMM (simulated
// sparse SUMMA) under the three SpKAdd pipelines — Heap, Sorted Hash,
// Unsorted Hash — for two protein-similarity-shaped surrogates standing in
// for Metaclust50 and Isolates (see DESIGN.md substitution table).
//
// Each pipeline runs under both SUMMA schedules so the streaming rebuild is
// measured against the pre-streaming baseline it replaced:
//   buffered  — all g stage products live per process, one-shot SpKAdd;
//   streaming — stage products fold into a persistent accumulator, at most
//               --window live per process (the §V memory bound).
// `--json <path>` writes the machine-readable samples CI tracks per run.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "gen/rmat.hpp"
#include "summa/sparse_summa.hpp"
#include "util/cli.hpp"

using namespace spkadd;

namespace {

std::string mnnz(std::size_t nnz) {
  return util::TablePrinter::fmt_count(nnz);
}

struct Row {
  std::string name;
  summa::SummaConfig cfg;
};

/// The preset bars of Fig. 6 plus the per-chunk hybrid pipeline, or — when
/// the user names a reduce method on the CLI — just that one pipeline over
/// sorted-hash local multiplies.
std::vector<Row> pipelines(int grid, const std::string& reduce_method) {
  if (!reduce_method.empty()) {
    summa::SummaConfig cfg = summa::sorted_hash_pipeline(grid);
    cfg.reduce_method = core::method_from_name(reduce_method);
    return {{core::method_name(cfg.reduce_method), cfg}};
  }
  return {
      {"Heap", summa::heap_pipeline(grid)},
      {"Sorted Hash", summa::sorted_hash_pipeline(grid)},
      {"Unsorted Hash", summa::unsorted_hash_pipeline(grid)},
      {"Hybrid", summa::hybrid_pipeline(grid)},
  };
}

void run_dataset(const std::string& name,
                 const CscMatrix<std::int32_t, double>& m, int grid,
                 int window, int repeats, const std::vector<Row>& rows,
                 bench::SampleLog& log) {
  std::cout << "### " << name << "  (" << m.rows() << "x" << m.cols()
            << ", nnz=" << util::TablePrinter::fmt_count(m.nnz())
            << ", grid=" << grid << "x" << grid << " => k=" << grid
            << " SUMMA stages, window=" << window << ")\n";
  // Phase columns are *summed over processes* (the quantity Fig. 6 stacks);
  // for the streaming schedule the processes run on concurrent workers, so
  // those sums are busy time, not elapsed time. "wall (s)" is the
  // apples-to-apples elapsed comparison between the two schedules.
  util::TablePrinter table({"Pipeline", "Schedule", "sum multiply (s)",
                            "sum spkadd (s)", "wall (s)", "peak live nnz",
                            "intermediate cf"});
  const std::string shape = "grid=" + std::to_string(grid) +
                            " window=" + std::to_string(window) + " nnz=" +
                            std::to_string(m.nnz());
  for (const auto& r : rows) {
    summa::SummaResult buffered, streaming;
    summa::SummaConfig buffered_cfg = r.cfg;
    buffered_cfg.streaming = false;
    summa::SummaConfig streaming_cfg = r.cfg;
    streaming_cfg.streaming = true;
    streaming_cfg.stream_window = window;

    // A*A: similarity self-join, as in HipMCL's expansion.
    const double t_buffered = bench::time_median(
        repeats, [&] { buffered = summa::multiply(m, m, buffered_cfg); });
    const double t_streaming = bench::time_median(
        repeats, [&] { streaming = summa::multiply(m, m, streaming_cfg); });
    if (!(streaming.c == buffered.c)) {
      std::cerr << "MISMATCH: streaming C differs from buffered C ("
                << r.name << ")\n";
      std::exit(1);
    }

    for (const auto* run : {&buffered, &streaming}) {
      const bool is_stream = run == &streaming;
      table.add_row(
          {r.name, is_stream ? "streaming" : "buffered",
           util::TablePrinter::fmt_seconds(run->multiply_seconds),
           util::TablePrinter::fmt_seconds(run->spkadd_seconds),
           util::TablePrinter::fmt_seconds(is_stream ? t_streaming
                                                     : t_buffered),
           mnnz(run->peak_intermediate_nnz),
           util::TablePrinter::fmt_ratio(run->compression_factor)});
    }
    const double footprint_cut =
        streaming.peak_intermediate_nnz == 0
            ? 1.0
            : static_cast<double>(buffered.peak_intermediate_nnz) /
                  static_cast<double>(streaming.peak_intermediate_nnz);
    std::cerr << "done: " << r.name << " — streaming peak live nnz "
              << footprint_cut << "x smaller, wall "
              << (t_streaming > 0 ? t_buffered / t_streaming : 0.0)
              << "x the buffered throughput\n";
    log.add(name + "/" + r.name + "/buffered", shape, t_buffered,
            buffered.peak_intermediate_nnz);
    log.add(name + "/" + r.name + "/streaming", shape, t_streaming,
            streaming.peak_intermediate_nnz);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig6_summa",
                      "Fig. 6: SpKAdd inside distributed SpGEMM");
  const auto* scale = cli.add_int("scale", 13, "log2 matrix dimension");
  const auto* degree = cli.add_int("degree", 16, "avg nonzeros per column");
  const auto* grid = cli.add_int("grid", 8, "process grid dimension g (k=g)");
  const auto* window =
      cli.add_int("window", 2, "streaming stage-product window per process");
  const auto* repeats = cli.add_int("repeats", 1, "timing repetitions");
  const auto* reduce = cli.add_string(
      "reduce-method", "",
      "run a single pipeline with this SpKAdd reduce method instead of "
      "the preset trio + hybrid (heap, hash, hybrid, ...)");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;
  // Validate the method name now: the datasets below take minutes at
  // large --scale, and a typo should fail in milliseconds instead.
  try {
    if (!reduce->empty()) (void)core::method_from_name(*reduce);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_fig6_summa: " << e.what() << "\n";
    return 1;
  }

  bench::print_header(
      "Fig. 6 — effect of SpKAdd on distributed SpGEMM (simulated SUMMA)",
      "paper Fig. 6 (Cori KNL, communication excluded): hash SpKAdd should "
      "cut the reduction cost by ~an order of magnitude vs heap, the "
      "unsorted-hash pipeline should also shave the local multiply, and the "
      "streaming schedule should hold peak live intermediates to ~window/g "
      "of the buffered baseline at comparable throughput");

  bench::SampleLog log("bench_fig6_summa");

  // Metaclust50 surrogate: larger, sparser, strongly skewed.
  try {
    auto p = gen::RmatParams::g500(
        static_cast<int>(*scale), static_cast<int>(*scale),
        (1ull << *scale) * static_cast<std::uint64_t>(*degree), 61);
    run_dataset("Metaclust50 surrogate", gen::rmat_csc(p),
                static_cast<int>(*grid), static_cast<int>(*window),
                static_cast<int>(*repeats),
                pipelines(static_cast<int>(*grid), *reduce), log);
    // Isolates surrogate: smaller and denser.
    auto q = gen::RmatParams::g500(
        static_cast<int>(*scale) - 2, static_cast<int>(*scale) - 2,
        (1ull << (*scale - 2)) * static_cast<std::uint64_t>(*degree) * 2, 62);
    const int half_grid = std::max(1, static_cast<int>(*grid) / 2);
    run_dataset("Isolates surrogate", gen::rmat_csc(q), half_grid,
                static_cast<int>(*window), static_cast<int>(*repeats),
                pipelines(half_grid, *reduce), log);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_fig6_summa: " << e.what() << "\n";
    return 1;
  }

  if (!json->empty() && !log.write(*json)) return 1;
  return 0;
}
