// Reproduces Fig. 6: computational phases of distributed SpGEMM (simulated
// sparse SUMMA) under the three SpKAdd pipelines — Heap, Sorted Hash,
// Unsorted Hash — for two protein-similarity-shaped surrogates standing in
// for Metaclust50 and Isolates (see DESIGN.md substitution table).
#include <iostream>

#include "bench_common.hpp"
#include "gen/rmat.hpp"
#include "summa/sparse_summa.hpp"
#include "util/cli.hpp"

using namespace spkadd;

namespace {

void run_dataset(const std::string& name,
                 const CscMatrix<std::int32_t, double>& m, int grid) {
  std::cout << "### " << name << "  (" << m.rows() << "x" << m.cols()
            << ", nnz=" << util::TablePrinter::fmt_count(m.nnz())
            << ", grid=" << grid << "x" << grid << " => k=" << grid
            << " SUMMA stages)\n";
  util::TablePrinter table({"Pipeline", "Local Multiply (s)", "SpKAdd (s)",
                            "Total (s)", "intermediate cf"});
  struct Row {
    std::string name;
    summa::SummaConfig cfg;
  };
  const std::vector<Row> rows{
      {"Heap", summa::heap_pipeline(grid)},
      {"Sorted Hash", summa::sorted_hash_pipeline(grid)},
      {"Unsorted Hash", summa::unsorted_hash_pipeline(grid)},
  };
  for (const auto& r : rows) {
    const auto result = summa::multiply(m, m, r.cfg);  // A*A: similarity
                                                       // self-join, as in
                                                       // HipMCL's expansion
    table.add_row({r.name,
                   util::TablePrinter::fmt_seconds(result.multiply_seconds),
                   util::TablePrinter::fmt_seconds(result.spkadd_seconds),
                   util::TablePrinter::fmt_seconds(result.multiply_seconds +
                                                   result.spkadd_seconds),
                   util::TablePrinter::fmt_ratio(result.compression_factor)});
    std::cerr << "done: " << r.name << "\n";
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig6_summa",
                      "Fig. 6: SpKAdd inside distributed SpGEMM");
  const auto* scale = cli.add_int("scale", 13, "log2 matrix dimension");
  const auto* degree = cli.add_int("degree", 16, "avg nonzeros per column");
  const auto* grid = cli.add_int("grid", 8, "process grid dimension g (k=g)");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header(
      "Fig. 6 — effect of SpKAdd on distributed SpGEMM (simulated SUMMA)",
      "paper Fig. 6 (Cori KNL, communication excluded): hash SpKAdd should "
      "cut the reduction cost by ~an order of magnitude vs heap, and the "
      "unsorted-hash pipeline should also shave the local multiply");

  // Metaclust50 surrogate: larger, sparser, strongly skewed.
  {
    auto p = gen::RmatParams::g500(static_cast<int>(*scale),
                                   static_cast<int>(*scale),
                                   (1ull << *scale) * static_cast<std::uint64_t>(*degree),
                                   61);
    run_dataset("Metaclust50 surrogate", gen::rmat_csc(p),
                static_cast<int>(*grid));
  }
  // Isolates surrogate: smaller and denser.
  {
    auto p = gen::RmatParams::g500(
        static_cast<int>(*scale) - 2, static_cast<int>(*scale) - 2,
        (1ull << (*scale - 2)) * static_cast<std::uint64_t>(*degree) * 2, 62);
    run_dataset("Isolates surrogate", gen::rmat_csc(p),
                static_cast<int>(*grid) / 2);
  }
  return 0;
}
