// Reproduces Table I empirically: measures the Work (data-structure
// operations) and I/O (streamed bytes) of every algorithm while sweeping k
// on ER inputs, and reports the observed growth exponents against the
// analytic ones — O(k^2 nd) for 2-way incremental, O(k nd lg k) for tree and
// heap, O(k nd) for SPA/hash/sliding hash.
#include <cmath>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;

namespace {

core::OpCounters measure(const std::vector<CscMatrix<std::int32_t, double>>&
                             inputs,
                         core::Method method) {
  core::OpCounters c;
  core::Options opts;
  opts.method = method;
  opts.counters = &c;
  auto out = core::spkadd(inputs, opts);
  static std::size_t sink = 0;
  sink += out.nnz();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_table1_complexity",
                      "Table I: measured work/I-O vs analytic complexity");
  const auto* rows = cli.add_int("rows", 1 << 14, "rows per matrix");
  const auto* cols = cli.add_int("cols", 64, "cols per matrix");
  const auto* d = cli.add_int("d", 16, "avg nonzeros per column");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header(
      "Table I — measured operation counts vs analytic complexity",
      "paper Table I (work and I/O columns, ER inputs). The 'k-exponent' "
      "column fits work ~ k^e between k=4 and k=32: expect e~2 for 2-way "
      "incremental, e in (1, 1.5) for tree/heap (the lg k factor), e~1 for "
      "SPA/hash/sliding hash.");

  const std::vector<int> ks{4, 8, 16, 32};
  std::vector<std::vector<CscMatrix<std::int32_t, double>>> workloads;
  for (int k : ks) {
    gen::WorkloadSpec spec;
    spec.pattern = gen::Pattern::ER;
    spec.rows = *rows;
    spec.cols = *cols;
    spec.avg_nnz_per_col = *d;
    spec.k = k;
    spec.seed = 6000 + static_cast<std::uint64_t>(k);
    workloads.push_back(gen::make_workload(spec));
  }

  std::vector<std::string> headers{"Algorithm"};
  for (int k : ks) headers.push_back("work k=" + std::to_string(k));
  headers.push_back("k-exponent");
  headers.push_back("bytes moved (k=32)");
  util::TablePrinter table(headers);

  const std::vector<core::Method> methods{
      core::Method::TwoWayIncremental, core::Method::TwoWayTree,
      core::Method::Heap,              core::Method::Spa,
      core::Method::Hash,              core::Method::SlidingHash};
  for (core::Method m : methods) {
    std::vector<std::string> row{core::method_name(m)};
    std::vector<double> work_per_k;
    std::uint64_t bytes_last = 0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto c = measure(workloads[i], m);
      work_per_k.push_back(static_cast<double>(c.work()));
      bytes_last = c.bytes_moved;
      row.push_back(util::TablePrinter::fmt_count(c.work()));
    }
    // Normalize by input volume (which itself grows linearly with k) to
    // isolate the extra k-dependence, then fit the exponent: the analytic
    // work for ER is  c * k^e * n * d  with e the Table I exponent.
    const double e = std::log(work_per_k.back() / work_per_k.front()) /
                     std::log(static_cast<double>(ks.back()) /
                              static_cast<double>(ks.front()));
    std::ostringstream es;
    es.precision(2);
    es << std::fixed << e;
    row.push_back(es.str());
    row.push_back(util::TablePrinter::fmt_count(bytes_last));
    table.add_row(std::move(row));
    std::cerr << "done: " << core::method_name(m) << "\n";
  }
  table.print(std::cout);
  return 0;
}
