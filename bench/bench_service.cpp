// Open-loop load generator for the sharded aggregation service: sweeps
// shards x producer threads x batch_window over ER/RMAT update streams
// and reports sustained ingest throughput plus submit->applied latency
// percentiles (p50/p95/p99), the queue high-water mark, and the peak
// staged footprint.
//
// Each configuration first runs a correctness pass: N producers submit
// a fixed update set concurrently and the drained snapshot must be
// BIT-IDENTICAL to a one-shot core::spkadd over the same updates. The
// update values are quantized to small integers so double addition is
// exact and the comparison is exact regardless of how producers,
// workers and shard folds interleaved (see src/service/shard.hpp).
//
//   ./bench/bench_service --shards 1,2,4 --producers 2 --duration-ms 200
//   ./bench/bench_service --rate 500 --burst 1,8 --json samples.json
#include <atomic>
#include <cstdio>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "obs/metrics.hpp"
#include "service/agg_service.hpp"
#include "util/cli.hpp"
#include "util/thread_control.hpp"
#include "util/timer.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

/// Snap every value to an integer in [-8, 8] so addition is exact.
void quantize_values(Csc& m) {
  for (auto& v : m.mutable_values())
    v = std::round(v * 8.0);
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

std::string rate_str(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", per_sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "bench_service",
      "aggregation-service loadgen: shards x producers x batch_window");
  const auto* rows = cli.add_int("rows", 1 << 13, "update rows");
  const auto* cols = cli.add_int("cols", 32, "update cols");
  const auto* d = cli.add_int("d", 4, "avg nonzeros per column per update");
  const auto* updates =
      cli.add_int("updates", 24, "updates per producer (verify pass)");
  const auto* shards = cli.add_int_list("shards", "1,2,4", "shard sweep");
  const auto* producers = cli.add_int_list(
      "producers", "2", "producer-thread sweep (0 = OpenMP max threads)");
  const auto* windows =
      cli.add_int_list("batch-window", "4", "accumulator fold window sweep");
  const auto* bursts = cli.add_int_list(
      "burst", "8", "producer burst-buffer size sweep (1 = per-update)");
  const auto* flush_deadline_us = cli.add_int(
      "flush-deadline-us", 500, "max microseconds an update may sit staged");
  const auto* duration_ms =
      cli.add_int("duration-ms", 200, "throughput pass duration");
  const auto* queue = cli.add_int("queue", 64, "ingest queue capacity");
  const auto* queue_high = cli.add_int(
      "queue-high", 0, "throttle watermark (0 = queue capacity)");
  const auto* queue_low = cli.add_int(
      "queue-low", 0, "release watermark (0 = 3/4 of the high watermark)");
  const auto* pin = cli.add_flag(
      "pin", "pin worker i to CPU i (thread/shard affinity for scaling runs)");
  const auto* workers = cli.add_int("workers", 0, "worker threads (0=shards)");
  const auto* rate = cli.add_int(
      "rate", 0, "per-producer target updates/s (0 = saturation)");
  const auto* fold_threads = cli.add_int(
      "fold-threads", 1,
      "OpenMP threads per shard fold (worker concurrency is the axis "
      "under test, so per-fold column parallelism defaults off)");
  const auto* method_flag = cli.add_string(
      "method", "auto", "shard fold method (auto, hash, hybrid, ...)");
  const auto* metrics_flag = cli.add_string(
      "metrics", "on",
      "attach a metrics registry: on|off (the overhead-gate axis — "
      "scripts/bench_smoke.sh compares matched-load runs of both)");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;

  if (*metrics_flag != "on" && *metrics_flag != "off") {
    std::cerr << "bench_service: --metrics must be on or off\n";
    return 1;
  }
  const bool metrics_on = *metrics_flag == "on";

  core::Method fold_method;
  try {
    // Central parser (core/method.cpp) — no per-bench string->enum map.
    fold_method = core::method_from_name(*method_flag);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_service: " << e.what() << "\n";
    return 1;
  }

  // ServiceConfig's knobs are size_t: a negative flag would wrap to a
  // huge value that sails past validate(), so bound-check here.
  const auto positive = [](const char* name, std::int64_t v) {
    if (v < 1) {
      std::cerr << "bench_service: --" << name << " must be >= 1\n";
      return false;
    }
    return true;
  };
  if (!positive("rows", *rows) || !positive("cols", *cols) ||
      !positive("d", *d) || !positive("updates", *updates) ||
      !positive("queue", *queue) || !positive("duration-ms", *duration_ms) ||
      !positive("flush-deadline-us", *flush_deadline_us))
    return 1;
  if (*workers < 0 || *rate < 0 || *fold_threads < 0 || *queue_high < 0 ||
      *queue_low < 0) {
    std::cerr << "bench_service: --workers/--rate/--fold-threads/"
                 "--queue-high/--queue-low must be >= 0\n";
    return 1;
  }
  for (const auto& [name, list] :
       {std::pair<const char*, const std::vector<std::int64_t>*>{
            "shards", shards},
        {"batch-window", windows},
        {"burst", bursts}})
    for (const std::int64_t v : *list)
      if (!positive(name, v)) return 1;
  for (const std::int64_t v : *producers)
    if (v < 0) {
      std::cerr << "bench_service: --producers must be >= 0\n";
      return 1;
    }

  bench::print_header(
      "Sharded aggregation service loadgen",
      "sustained multi-producer ingest over the streaming accumulator");
  bench::SampleLog log("bench_service");

  bool all_verified = true;
  util::TablePrinter table({"pattern", "shards", "prod", "window", "burst",
                            "upd/s", "Mnnz/s", "p50 ms", "p99 ms", "avg bst",
                            "thr ms", "drops", "queue hw",
                            "chunks h/s/H/W/D",
                            "exact"});

  for (const gen::Pattern pattern : {gen::Pattern::ER, gen::Pattern::RMAT}) {
    const char* pname = pattern == gen::Pattern::ER ? "ER" : "RMAT";
    for (const std::int64_t P_flag : *producers) {
      // 0 producers = "one per available hardware thread", the knob the
      // multi-core CI scaling leg turns without caring what the runner
      // has (mirrors OpenMP's threads=0 convention in core::Options).
      const std::int64_t P =
          P_flag != 0 ? P_flag
                      : static_cast<std::int64_t>(
                            util::current_max_threads());
      // One fixed update set per (pattern, producer-count): P streams of
      // --updates each, integer-quantized. The one-shot reduction over
      // the whole set is the ground truth every config must hit.
      gen::WorkloadSpec spec;
      spec.pattern = pattern;
      spec.rows = *rows;
      spec.cols = *cols;
      spec.avg_nnz_per_col = *d;
      spec.k = static_cast<int>(P * *updates);
      spec.seed = 9000 + static_cast<std::uint64_t>(P);
      auto all_updates = gen::make_workload(spec);
      for (auto& u : all_updates) quantize_values(u);
      std::cerr << "generated " << spec.describe() << "\n";
      const Csc expected = core::spkadd(all_updates);
      std::size_t set_nnz = 0;
      for (const auto& u : all_updates) set_nnz += u.nnz();

      for (const std::int64_t S : *shards) {
        for (const std::int64_t W : *windows) {
         for (const std::int64_t B : *bursts) {
          service::ServiceConfig cfg;
          cfg.shards = static_cast<std::size_t>(S);
          cfg.workers = static_cast<std::size_t>(*workers);
          cfg.queue_capacity = static_cast<std::size_t>(*queue);
          cfg.batch_window = static_cast<std::size_t>(W);
          cfg.burst_size = static_cast<std::size_t>(B);
          cfg.flush_deadline_us =
              static_cast<std::size_t>(*flush_deadline_us);
          cfg.queue_high_watermark = static_cast<std::size_t>(*queue_high);
          cfg.queue_low_watermark = static_cast<std::size_t>(*queue_low);
          cfg.pin_threads = *pin;
          cfg.options.threads = static_cast<int>(*fold_threads);
          cfg.options.method = fold_method;
          // Fresh registry per configuration so sequential sweeps never
          // pollute each other's samples; off = nullptr disables every
          // collector registration.
          obs::MetricsRegistry registry;
          cfg.metrics = metrics_on ? &registry : nullptr;

          // --- correctness pass: concurrent ingest == one-shot spkadd.
          bool exact = false;
          {
            service::AggService svc(cfg);
            std::vector<std::thread> threads;
            for (std::int64_t p = 0; p < P; ++p)
              threads.emplace_back([&, p] {
                for (std::int64_t i = 0; i < *updates; ++i)
                  svc.submit("bench", all_updates[static_cast<std::size_t>(
                                          p * *updates + i)]);
              });
            for (auto& t : threads) t.join();
            svc.drain();
            exact = svc.snapshot("bench").sum == expected;
          }
          all_verified = all_verified && exact;
          if (!exact)
            std::cerr << "MISMATCH: shards=" << S << " producers=" << P
                      << " window=" << W << " is not bit-identical to "
                      << "one-shot spkadd\n";

          // --- throughput pass: open-loop ingest for --duration-ms.
          service::AggService svc(cfg);
          util::WallTimer wall;
          const double duration = static_cast<double>(*duration_ms) * 1e-3;
          std::atomic<std::uint64_t> drops{0};
          std::vector<std::thread> threads;
          for (std::int64_t p = 0; p < P; ++p)
            threads.emplace_back([&, p] {
              util::WallTimer t;
              std::size_t i = 0;
              const std::size_t n = all_updates.size();
              const std::size_t base = static_cast<std::size_t>(p * *updates);
              while (t.seconds() < duration) {
                Csc u = all_updates[(base + i++) % n];
                if (*rate <= 0) {
                  svc.submit("bench", std::move(u));  // saturation mode
                  continue;
                }
                // Fixed arrival schedule; a saturated ingest path drops
                // the update (counted here) instead of slipping the
                // clock — that keeps offered load matched across
                // configurations when comparing their p99.
                if (!svc.try_submit("bench", std::move(u)))
                  drops.fetch_add(1, std::memory_order_relaxed);
                const double next = static_cast<double>(i) /
                                    static_cast<double>(*rate);
                const double sleep_s = next - t.seconds();
                if (sleep_s > 0)
                  std::this_thread::sleep_for(
                      std::chrono::duration<double>(sleep_s));
              }
            });
          for (auto& t : threads) t.join();
          svc.drain();
          const double elapsed = wall.seconds();
          const auto st = svc.stats();

          const double upd_s =
              static_cast<double>(st.applied) / elapsed;
          std::uint64_t folded = 0;
          std::size_t peak_staged = 0;
          core::OpCounters chunk_totals;
          for (const auto& sh : st.shards) {
            folded += sh.folded_nnz;
            peak_staged = std::max(peak_staged, sh.peak_staged_nnz);
            chunk_totals.chunks_heap += sh.chunks_heap;
            chunk_totals.chunks_spa += sh.chunks_spa;
            chunk_totals.chunks_hash += sh.chunks_hash;
            chunk_totals.chunks_sliding += sh.chunks_sliding;
            chunk_totals.chunks_dense += sh.chunks_dense;
          }
          const double nnz_s = static_cast<double>(folded) / elapsed;
          const std::string mix = fold_method == core::Method::Hybrid
                                      ? chunk_totals.chunk_mix()
                                      : "-";

          char avg_bst[32];
          std::snprintf(avg_bst, sizeof(avg_bst), "%.1f",
                        st.ingest.avg_burst());
          const std::string config =
              "pattern=" + std::string(pname) + " shards=" +
              std::to_string(S) + " producers=" + std::to_string(P) +
              " window=" + std::to_string(W) + " burst=" +
              std::to_string(B) + " rate=" + std::to_string(*rate) +
              " pin=" + (*pin ? "1" : "0") +
              " method=" + core::method_name(fold_method) +
              " metrics=" + *metrics_flag;
          table.add_row({pname, std::to_string(S), std::to_string(P),
                         std::to_string(W), std::to_string(B),
                         rate_str(upd_s), rate_str(nnz_s / 1e6),
                         ms(st.latency.p50), ms(st.latency.p99), avg_bst,
                         ms(st.ingest.throttle_seconds),
                         *rate > 0 ? std::to_string(drops.load()) : "-",
                         std::to_string(st.queue_high_water), mix,
                         exact ? "yes" : "NO"});
          log.add("service/" + std::string(pname) + "/ingest", config,
                  st.applied ? elapsed / static_cast<double>(st.applied)
                             : 0.0,
                  peak_staged);
          log.add("service/" + std::string(pname) + "/p99", config,
                  st.latency.p99, peak_staged);
         }
        }
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nall configurations bit-identical to one-shot spkadd: "
            << (all_verified ? "yes" : "NO") << "\n";
  if (!json->empty() && !log.write(*json)) return 1;
  return all_verified ? 0 : 1;
}
