// Ablation bench for the design choices DESIGN.md calls out:
//   1. dynamic vs static column scheduling on skewed (RMAT) inputs;
//   2. sorted vs unsorted output for the hash family (the sort's share);
//   3. the symbolic phase's share of total time vs compression factor
//      (why the sliding *symbolic* matters most at high cf).
#include <iostream>

#include "bench_common.hpp"
#include "core/symbolic.hpp"
#include "matrix/validate.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace spkadd;

namespace {

using Inputs = std::vector<CscMatrix<std::int32_t, double>>;

Inputs workload(gen::Pattern p, std::int64_t rows, std::int64_t cols,
                std::int64_t d, int k, std::uint64_t seed) {
  gen::WorkloadSpec spec;
  spec.pattern = p;
  spec.rows = rows;
  spec.cols = cols;
  spec.avg_nnz_per_col = d;
  spec.k = k;
  spec.seed = seed;
  return gen::make_workload(spec);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_ablation", "design-choice ablations");
  const auto* rows = cli.add_int("rows", 1 << 15, "rows per matrix");
  const auto* repeats = cli.add_int("repeats", 3, "timing repetitions");
  if (!cli.parse(argc, argv)) return 1;
  const int reps = static_cast<int>(*repeats);

  bench::print_header("Ablations — scheduling, sorting, symbolic share",
                      "design choices of §III-A and §II-D");

  // ---- 1. dynamic vs static scheduling --------------------------------
  std::cout << "### 1. Column scheduling on skewed inputs (Hash method)\n";
  {
    util::TablePrinter table({"workload", "dynamic (s)", "static (s)",
                              "static/dynamic"});
    for (auto p : {gen::Pattern::ER, gen::Pattern::RMAT}) {
      const auto inputs =
          workload(p, *rows, 256, 128, 32, 7001);
      core::Options dyn;
      dyn.schedule = core::Schedule::Dynamic;
      core::Options sta;
      sta.schedule = core::Schedule::Static;
      const double td =
          bench::time_spkadd(inputs, core::Method::Hash, dyn, reps);
      const double ts =
          bench::time_spkadd(inputs, core::Method::Hash, sta, reps);
      table.add_row({p == gen::Pattern::ER ? "ER (uniform)" : "RMAT (skewed)",
                     util::TablePrinter::fmt_seconds(td),
                     util::TablePrinter::fmt_seconds(ts),
                     util::TablePrinter::fmt_ratio(ts / td)});
    }
    table.print(std::cout);
    std::cout << "expected: ~1.0 for ER; >= 1.0 for RMAT, growing with "
                 "thread count (single-core hosts show parity).\n\n";
  }

  // ---- 2. sorted vs unsorted output ------------------------------------
  std::cout << "### 2. Output sorting cost (hash family)\n";
  {
    util::TablePrinter table(
        {"method", "sorted (s)", "unsorted (s)", "sorted/unsorted"});
    const auto inputs = workload(gen::Pattern::ER, *rows, 64, 512, 32, 7002);
    for (auto m : {core::Method::Spa, core::Method::Hash,
                   core::Method::SlidingHash}) {
      core::Options sorted;
      core::Options unsorted;
      unsorted.sorted_output = false;
      const double ts = bench::time_spkadd(inputs, m, sorted, reps);
      const double tu = bench::time_spkadd(inputs, m, unsorted, reps);
      table.add_row({core::method_name(m),
                     util::TablePrinter::fmt_seconds(ts),
                     util::TablePrinter::fmt_seconds(tu),
                     util::TablePrinter::fmt_ratio(ts / tu)});
    }
    table.print(std::cout);
    std::cout << "expected: unsorted saves the per-column sort (the ~20% "
                 "local-multiply saving the paper reports in Fig. 6).\n\n";
  }

  // ---- 3. symbolic share vs compression factor -------------------------
  std::cout << "### 3. Symbolic-phase share vs compression factor\n";
  {
    util::TablePrinter table({"workload", "cf", "symbolic (s)", "total (s)",
                              "symbolic share"});
    struct Cfg {
      std::string name;
      int k;
      std::uint64_t seed;
      bool duplicate;  ///< add the same matrix k times => cf = k
    };
    for (const Cfg& cfg :
         {Cfg{"disjoint (cf~1)", 16, 7003, false},
          Cfg{"overlapping (cf~k)", 16, 7004, true}}) {
      Inputs inputs;
      if (cfg.duplicate) {
        const auto base =
            workload(gen::Pattern::ER, *rows, 64, 256, 1, cfg.seed)[0];
        inputs.assign(16, base);
      } else {
        inputs = workload(gen::Pattern::ER, *rows, 64, 256, cfg.k, cfg.seed);
      }
      const auto out = core::spkadd_hash(
          std::span<const CscMatrix<std::int32_t, double>>(inputs));
      const double cf = compression_factor(
          std::span<const CscMatrix<std::int32_t, double>>(inputs), out);
      double sym_t = bench::time_best(reps, [&] {
        auto counts = core::symbolic_nnz_per_column(
            std::span<const CscMatrix<std::int32_t, double>>(inputs),
            core::Options{}, false);
        static std::size_t sink = 0;
        sink += counts.size();
      });
      const double total_t =
          bench::time_spkadd(inputs, core::Method::Hash, core::Options{}, reps);
      table.add_row({cfg.name, util::TablePrinter::fmt_ratio(cf),
                     util::TablePrinter::fmt_seconds(sym_t),
                     util::TablePrinter::fmt_seconds(total_t),
                     util::TablePrinter::fmt_ratio(sym_t / total_t)});
    }
    table.print(std::cout);
    std::cout << "expected: the symbolic share grows with cf because its "
                 "tables are sized by input nnz (cf times the output nnz) — "
                 "the reason sliding matters most for the symbolic phase.\n";
  }
  return 0;
}
