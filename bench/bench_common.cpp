#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "gen/workload.hpp"
#include "matrix/coo.hpp"
#include "util/cache_info.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"
#include "version.hpp"

namespace spkadd::bench {

void print_header(const std::string& title, const std::string& what) {
  const auto& info = util::cached_machine();
  std::cout << "# " << title << "\n"
            << "spkadd version: " << kVersion << "\n"
            << "reproduces: " << what << "\n"
            << "machine: " << info.summary() << "\n\n";
}

double time_best(int repeats, const std::function<void()>& fn) {
  double best = -1.0;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    util::WallTimer t;
    fn();
    const double s = t.seconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

double time_spkadd(const std::vector<CscMatrix<std::int32_t, double>>& inputs,
                   core::Method method, const core::Options& base_opts,
                   int repeats) {
  core::Options opts = base_opts;
  opts.method = method;
  return time_best(repeats, [&] {
    auto out = core::spkadd(inputs, opts);
    // Keep the result alive through the timer so allocation+fill is counted
    // but deallocation of the previous result is not part of the next lap.
    static thread_local std::size_t sink = 0;
    sink += out.nnz();
  });
}

const std::vector<core::Method>& table_methods() {
  static const std::vector<core::Method> methods = {
      core::Method::TwoWayIncremental, core::Method::ReferenceIncremental,
      core::Method::TwoWayTree,        core::Method::ReferenceTree,
      core::Method::Heap,              core::Method::Spa,
      core::Method::Hash,              core::Method::SlidingHash,
      core::Method::Hybrid,
  };
  return methods;
}

std::string cell(double seconds) {
  return seconds < 0 ? "n/a" : util::TablePrinter::fmt_seconds(seconds);
}

namespace {

/// Densify column 0 of `m` to ~rows/2 entries (the hub): every even row,
/// deterministic values. Other columns keep their pattern.
CscMatrix<std::int32_t, double> with_hub_column(
    const CscMatrix<std::int32_t, double>& m, std::uint64_t seed) {
  CooMatrix<std::int32_t, double> coo(m.rows(), m.cols());
  for (std::int32_t r = 0; r < m.rows(); r += 2)
    coo.push(r, 0, 1.0 + static_cast<double>((r + seed) % 7));
  for (std::int32_t j = 1; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      coo.push(col.rows[i], j, col.vals[i]);
  }
  coo.compress();
  return coo.to_csc();
}

}  // namespace

std::vector<SkewPreset> make_skew_presets(std::int64_t rows,
                                          std::int64_t cols, std::int64_t d,
                                          int k) {
  std::vector<SkewPreset> presets;
  gen::WorkloadSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.avg_nnz_per_col = d;
  spec.k = k;

  spec.pattern = gen::Pattern::ER;
  spec.seed = 1101;
  presets.push_back({"ER-uniform-k64", gen::make_workload(spec)});

  gen::WorkloadSpec tiny = spec;
  tiny.avg_nnz_per_col = 2;
  tiny.k = 4;
  tiny.seed = 1102;
  presets.push_back({"ER-sparse-k4", gen::make_workload(tiny)});

  spec.pattern = gen::Pattern::RMAT;
  spec.seed = 1103;
  presets.push_back({"RMAT-skew-k64", gen::make_workload(spec)});

  spec.seed = 1104;
  auto hub = gen::make_workload(spec);
  for (std::size_t i = 0; i < hub.size(); ++i)
    hub[i] = with_hub_column(hub[i], i);
  presets.push_back({"RMAT-hub-k64", std::move(hub)});
  return presets;
}

double time_median(int repeats, const std::function<void()>& fn) {
  std::vector<double> laps;
  laps.reserve(static_cast<std::size_t>(std::max(1, repeats)));
  for (int r = 0; r < std::max(1, repeats); ++r) {
    util::WallTimer t;
    fn();
    laps.push_back(t.seconds());
  }
  std::sort(laps.begin(), laps.end());
  const std::size_t n = laps.size();
  return n % 2 == 1 ? laps[n / 2] : 0.5 * (laps[n / 2 - 1] + laps[n / 2]);
}

SampleLog::SampleLog(std::string bench) : bench_(std::move(bench)) {}

void SampleLog::add(const std::string& name, const std::string& config,
                    double seconds, std::size_t peak_intermediate_nnz) {
  samples_.push_back(Sample{name, config, seconds, peak_intermediate_nnz});
}

bool SampleLog::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "SampleLog: cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n"
      << "  \"bench\": \"" << util::json_escape(bench_) << "\",\n"
      << "  \"version\": \"" << util::json_escape(std::string(kVersion))
      << "\",\n"
      << "  \"machine\": \""
      << util::json_escape(util::cached_machine().summary()) << "\",\n"
      << "  \"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    std::ostringstream secs;
    secs.precision(9);
    secs << s.seconds;
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"name\": \"" << util::json_escape(s.name) << "\", "
        << "\"config\": \"" << util::json_escape(s.config) << "\", "
        << "\"median_seconds\": " << secs.str() << ", "
        << "\"peak_intermediate_nnz\": " << s.peak_intermediate_nnz << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace spkadd::bench
