#include "bench_common.hpp"

#include <iostream>

#include "util/cache_info.hpp"
#include "util/timer.hpp"
#include "version.hpp"

namespace spkadd::bench {

void print_header(const std::string& title, const std::string& what) {
  const auto info = util::detect_machine();
  std::cout << "# " << title << "\n"
            << "spkadd version: " << kVersion << "\n"
            << "reproduces: " << what << "\n"
            << "machine: " << info.summary() << "\n\n";
}

double time_best(int repeats, const std::function<void()>& fn) {
  double best = -1.0;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    util::WallTimer t;
    fn();
    const double s = t.seconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

double time_spkadd(const std::vector<CscMatrix<std::int32_t, double>>& inputs,
                   core::Method method, const core::Options& base_opts,
                   int repeats) {
  core::Options opts = base_opts;
  opts.method = method;
  return time_best(repeats, [&] {
    auto out = core::spkadd(inputs, opts);
    // Keep the result alive through the timer so allocation+fill is counted
    // but deallocation of the previous result is not part of the next lap.
    static thread_local std::size_t sink = 0;
    sink += out.nnz();
  });
}

const std::vector<core::Method>& table_methods() {
  static const std::vector<core::Method> methods = {
      core::Method::TwoWayIncremental, core::Method::ReferenceIncremental,
      core::Method::TwoWayTree,        core::Method::ReferenceTree,
      core::Method::Heap,              core::Method::Spa,
      core::Method::Hash,              core::Method::SlidingHash,
  };
  return methods;
}

std::string cell(double seconds) {
  return seconds < 0 ? "n/a" : util::TablePrinter::fmt_seconds(seconds);
}

}  // namespace spkadd::bench
