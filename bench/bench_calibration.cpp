// Measured-miss calibration of the Hybrid planner (three modes).
//
//   --emit <path>      Sweep all five ColumnKernels over a (k x density x
//                      chunk-width) ER grid through the modeled cache
//                      hierarchy (cachesim::trace_kernel_spkadd) and write
//                      the versioned MissCostTable JSON the planner
//                      consumes (calibration/misscost_default.json is the
//                      committed output of scripts/calibrate.sh).
//   --table <path>     Load a table and race analytic-vs-calibrated Hybrid
//                      (plus the single kernels) on the shared skew
//                      presets. Bit-identity to Hash is a hard gate; the
//                      +2%-of-best-single overhead budget is reported and
//                      enforced only under --enforce-overhead (timing
//                      noise makes it advisory in CI).
//   --drift-against <path>  Re-run a reduced sweep with the loaded
//                      table's own hierarchy/rows/threads and count grid
//                      points whose argmin kernel changed; more than
//                      --drift-tolerance mismatches fails. This is the CI
//                      guard that the committed table still matches what
//                      the simulator measures.
//
// The sweep is fully deterministic (fixed seeds, explicit --cache-spec),
// so the committed table is reproducible on any machine.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cachesim/traced_spkadd.hpp"
#include "core/calibration.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

std::vector<std::uint64_t> parse_axis(const std::string& text,
                                      const char* flag) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string tok =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(tok, &used);
      if (used != tok.size() || v == 0) throw std::invalid_argument(tok);
      out.push_back(v);
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string(flag) + ": bad entry '" + tok +
                                  "' (want comma-separated positive ints)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i] <= out[i - 1])
      throw std::invalid_argument(std::string(flag) +
                                  ": entries must strictly increase");
  return out;
}

/// Measure one grid cell: k ER addends with `w` columns of ~d nnz each,
/// traced once per kernel. Unmeasured cells (none today) would be < 0.
void sweep_cell(const cachesim::HierarchySpec& hier, int threads,
                std::int64_t rows, std::uint64_t k, std::uint64_t d,
                std::uint64_t w, core::MissCostTable& table,
                std::size_t cell) {
  gen::WorkloadSpec spec;
  spec.pattern = gen::Pattern::ER;
  spec.rows = rows;
  spec.cols = static_cast<std::int64_t>(w);
  spec.avg_nnz_per_col = static_cast<std::int64_t>(d);
  spec.k = static_cast<int>(k);
  // One deterministic seed per cell so re-runs reproduce bit-identical
  // tables on any host.
  spec.seed = 9000 + 31 * k + 7 * d + w;
  const std::vector<Csc> inputs = gen::make_workload(spec);

  for (std::size_t ki = 0; ki < core::kNumColumnKernels; ++ki) {
    cachesim::KernelTraceConfig cfg;
    cfg.hierarchy = hier;
    cfg.threads = threads;
    cfg.kernel = static_cast<core::ColumnKernel>(ki);
    const cachesim::KernelTraceResult r =
        cachesim::trace_kernel_spkadd(inputs, cfg);
    table.costs[ki][cell] = r.weighted_miss_cost;
  }
}

core::MissCostTable run_sweep(const cachesim::HierarchySpec& hier,
                              int threads, std::int64_t rows,
                              const std::vector<std::uint64_t>& k_axis,
                              const std::vector<std::uint64_t>& d_axis,
                              const std::vector<std::uint64_t>& w_axis) {
  core::MissCostTable table;
  table.hierarchy = hier.to_string();
  table.rows = rows;
  table.threads = threads;
  table.k_axis = k_axis;
  table.d_axis = d_axis;
  table.width_axis = w_axis;
  for (auto& costs : table.costs) costs.assign(table.cells(), -1.0);

  std::size_t cell = 0;
  for (std::size_t ik = 0; ik < k_axis.size(); ++ik)
    for (std::size_t id = 0; id < d_axis.size(); ++id)
      for (std::size_t iw = 0; iw < w_axis.size(); ++iw, ++cell) {
        sweep_cell(hier, threads, rows, k_axis[ik], d_axis[id], w_axis[iw],
                   table, cell);
        std::cout << "  cell k=" << k_axis[ik] << " d=" << d_axis[id]
                  << " w=" << w_axis[iw]
                  << "  heap/spa/hash/sliding/dense = "
                  << table.costs[0][cell] << "/" << table.costs[1][cell]
                  << "/" << table.costs[2][cell] << "/"
                  << table.costs[3][cell] << "/"
                  << table.costs[4][cell] << "\n";
      }
  return table;
}

std::string pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

/// Count grid points of `probe` whose argmin kernel (sorted and unsorted
/// alike) disagrees with `committed` at the same (k, d, w).
std::size_t count_drift(const core::MissCostTable& committed,
                        const core::MissCostTable& probe) {
  std::size_t drift = 0;
  for (const std::uint64_t k : probe.k_axis)
    for (const std::uint64_t d : probe.d_axis)
      for (const std::uint64_t w : probe.width_axis)
        for (const bool sorted : {true, false}) {
          // best_kernel snaps (k, summed nnz, width) to the nearest grid
          // point; feeding exact grid coordinates compares cell argmins.
          const auto want = committed.best_kernel(k, k * d, w, sorted);
          const auto got = probe.best_kernel(k, k * d, w, sorted);
          if (want != got) {
            ++drift;
            std::cout << "  drift at k=" << k << " d=" << d << " w=" << w
                      << (sorted ? "" : " (unsorted)") << ": committed "
                      << core::column_kernel_name(want) << ", measured "
                      << core::column_kernel_name(got) << "\n";
          }
        }
  return drift;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_calibration",
                      "measured-miss calibration of the Hybrid planner");
  const auto* emit = cli.add_string(
      "emit", "", "sweep and write a MissCostTable JSON to this path");
  const auto* table_path = cli.add_string(
      "table", "", "load this table and race analytic vs calibrated Hybrid");
  const auto* drift_against = cli.add_string(
      "drift-against", "",
      "re-sweep on the loaded table's grid subset and count argmin changes");
  const auto* drift_tol = cli.add_int(
      "drift-tolerance", 0,
      "max tolerated argmin mismatches under --drift-against");
  const auto* cache_spec = cli.add_string(
      "cache-spec", "",
      "modeled hierarchy, e.g. L1:32K:8,L2:1M:16,LLC:8M:16 (empty = "
      "detected machine)");
  const auto* threads =
      cli.add_int("threads", 48, "simulated threads sharing the LLC");
  const auto* rows =
      cli.add_int("rows", 1 << 14, "trace-matrix rows per sweep cell");
  const auto* k_axis_s =
      cli.add_string("k-axis", "4,16,64", "addend-count grid");
  const auto* d_axis_s = cli.add_string(
      "d-axis", "2,16,128,1024", "per-addend column-nnz grid");
  const auto* w_axis_s =
      cli.add_string("w-axis", "4,16,64", "chunk-width grid (columns)");
  const auto* bench_rows =
      cli.add_int("bench-rows", 1 << 15, "preset rows in --table mode");
  const auto* bench_cols =
      cli.add_int("bench-cols", 64, "preset cols in --table mode");
  const auto* repeats = cli.add_int("repeats", 3, "timing repetitions");
  const auto* overhead_pct = cli.add_int(
      "max-overhead-pct", 2,
      "calibrated-Hybrid budget over the best single kernel");
  const auto* enforce = cli.add_flag(
      "enforce-overhead", "fail (exit 1) when the overhead budget is blown");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;

  try {
    const cachesim::HierarchySpec hier =
        cache_spec->empty()
            ? cachesim::HierarchySpec::detected()
            : cachesim::HierarchySpec::from_cli_spec(*cache_spec);

    // ---- drift mode -----------------------------------------------------
    if (!drift_against->empty()) {
      const auto committed = core::MissCostTable::load(*drift_against);
      const auto committed_hier =
          cachesim::HierarchySpec::from_cli_spec(committed.hierarchy);
      std::cout << "# drift check against " << *drift_against << "\n"
                << "hierarchy: " << committed.hierarchy
                << "  threads: " << committed.threads
                << "  rows: " << committed.rows << "\n";
      const auto probe = run_sweep(
          committed_hier, committed.threads, committed.rows,
          parse_axis(*k_axis_s, "--k-axis"),
          parse_axis(*d_axis_s, "--d-axis"),
          parse_axis(*w_axis_s, "--w-axis"));
      const std::size_t drift = count_drift(committed, probe);
      std::cout << "drift: " << drift << " argmin mismatches (tolerance "
                << *drift_tol << ")\n";
      return drift <= static_cast<std::size_t>(*drift_tol) ? 0 : 1;
    }

    // ---- emit mode ------------------------------------------------------
    if (!emit->empty()) {
      std::cout << "# calibration sweep\nhierarchy: " << hier.to_string()
                << "  threads: " << *threads << "  rows: " << *rows << "\n";
      const auto table = run_sweep(hier, static_cast<int>(*threads), *rows,
                                   parse_axis(*k_axis_s, "--k-axis"),
                                   parse_axis(*d_axis_s, "--d-axis"),
                                   parse_axis(*w_axis_s, "--w-axis"));
      table.save(*emit);
      // Round-trip through the loader so a table we cannot re-read never
      // lands on disk unnoticed.
      (void)core::MissCostTable::load(*emit);
      std::cout << "wrote " << *emit << " (" << table.cells()
                << " cells x " << core::kNumColumnKernels << " kernels)\n";
      if (*table_path == *emit || table_path->empty()) return 0;
    }

    // ---- compare mode ---------------------------------------------------
    if (table_path->empty()) {
      if (emit->empty())
        std::cerr << "bench_calibration: need --emit, --table or "
                     "--drift-against\n";
      return emit->empty() ? 1 : 0;
    }
    const auto table = core::MissCostTable::load(*table_path);

    bench::print_header(
        "Analytic vs calibrated Hybrid dispatch",
        "the measured-miss table should match or beat the analytic Fig. 2 "
        "thresholds on every skew preset, bit-identically");
    std::cout << "table: " << *table_path << " (hierarchy "
              << table.hierarchy << ", threads " << table.threads << ")\n\n";
    bench::SampleLog log("bench_calibration");

    const auto presets =
        bench::make_skew_presets(*bench_rows, *bench_cols, 8, 64);
    const std::vector<core::Method> singles = {
        core::Method::Heap, core::Method::Spa, core::Method::Hash,
        core::Method::SlidingHash, core::Method::DenseAcc};
    const std::string shape = "rows=" + std::to_string(*bench_rows) +
                              " cols=" + std::to_string(*bench_cols) +
                              " table=" + table.hierarchy;

    bool all_exact = true;
    bool within_budget = true;
    util::TablePrinter out(
        {"preset", "best single", "analytic hybrid", "calibrated hybrid",
         "calib chunks h/s/H/W/D", "calib vs best"});

    for (const auto& p : presets) {
      core::Options base;
      core::Options hash_opts = base;
      hash_opts.method = core::Method::Hash;
      const Csc expected = core::spkadd(p.inputs, hash_opts);

      double best_single = -1.0;
      std::string best_name;
      for (const core::Method m : singles) {
        const double t =
            bench::time_spkadd(p.inputs, m, base, static_cast<int>(*repeats));
        if (best_single < 0 || t < best_single) {
          best_single = t;
          best_name = core::method_name(m);
        }
      }

      auto run_hybrid = [&](const core::MissCostTable* calib, double& t_out,
                            std::string& mix_out) {
        core::Options opts = base;
        opts.method = core::Method::Hybrid;
        opts.calibration = calib;
        // Same lap shape as time_spkadd (best-of-repeats, result kept alive
        // through the timer) so hybrid and single-kernel numbers are
        // comparable.
        t_out = bench::time_best(static_cast<int>(*repeats), [&] {
          auto out = core::spkadd(p.inputs, opts);
          static thread_local std::size_t sink = 0;
          sink += out.nnz();
        });
        const Csc out_m = core::spkadd(p.inputs, opts);
        if (!(out_m == expected)) {
          std::cerr << "MISMATCH: " << (calib ? "calibrated" : "analytic")
                    << " Hybrid on " << p.name
                    << " is not bit-identical to Hash\n";
          all_exact = false;
        }
        core::OpCounters counters;
        core::Options copts = opts;
        copts.counters = &counters;
        (void)core::spkadd(p.inputs, copts);
        mix_out = counters.chunk_mix();
      };

      double t_analytic = 0.0, t_calibrated = 0.0;
      std::string mix_analytic, mix_calibrated;
      run_hybrid(nullptr, t_analytic, mix_analytic);
      run_hybrid(&table, t_calibrated, mix_calibrated);

      const double over = t_calibrated / best_single;
      if (over > 1.0 + static_cast<double>(*overhead_pct) / 100.0)
        within_budget = false;
      out.add_row({p.name, best_name + " " + bench::cell(best_single),
                   bench::cell(t_analytic), bench::cell(t_calibrated),
                   mix_calibrated, pct(over)});
      log.add(p.name + "/analytic-hybrid", shape + " chunks=" + mix_analytic,
              t_analytic);
      log.add(p.name + "/calibrated-hybrid",
              shape + " chunks=" + mix_calibrated, t_calibrated);
      log.add(p.name + "/best-single(" + best_name + ")", shape,
              best_single);
    }

    out.print(std::cout);
    std::cout << "\nbudget: calibrated Hybrid within +" << *overhead_pct
              << "% of the best single kernel on every preset: "
              << (within_budget ? "yes" : "NO") << "\n";
    if (!json->empty() && !log.write(*json)) return 1;
    if (!all_exact) return 1;
    return (*enforce && !within_budget) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_calibration: " << e.what() << "\n";
    return 1;
  }
}
