// Streaming accumulator vs one-shot SpKAdd (the §V memory/time trade-off):
// for k addends arriving as a stream, compare
//   * one-shot  — materialize all k inputs, one spkadd() call (peak memory
//     holds every addend plus the output);
//   * streaming — core::Accumulator with a batch capacity, which folds
//     borrowed addends into a running sum (peak intermediate memory is one
//     batch plus the running sum plus persistent scratch).
// Reports throughput (summed input nonzeros per second through the
// reducer) and the peak-intermediate footprint of each strategy, for
// k in {64, 256} (…512 with --full) on ER and RMAT streams, plus the
// schedule sweep (dynamic vs nnz-balanced) on the skewed RMAT case.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/accumulator.hpp"
#include "gen/workload.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

std::size_t inputs_bytes(const std::vector<Csc>& inputs) {
  std::size_t b = 0;
  for (const auto& m : inputs) b += m.storage_bytes();
  return b;
}

std::string mib(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return std::string(buf) + " MiB";
}

std::string gnnzps(std::size_t nnz, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nnz) / seconds / 1e9);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_streaming",
                      "streaming accumulator vs one-shot SpKAdd (§V)");
  const auto* rows = cli.add_int("rows", 1 << 15, "rows per matrix (m)");
  const auto* cols = cli.add_int("cols", 64, "cols per matrix (n)");
  const auto* d = cli.add_int("d", 8, "avg nonzeros per column per addend");
  const auto* batch = cli.add_int("batch", 8, "accumulator batch capacity");
  const auto* repeats = cli.add_int("repeats", 3, "timing repetitions");
  const auto* full = cli.add_flag("full", "also run k=512 (slow)");
  const auto* method_flag = cli.add_string(
      "method", "auto", "SpKAdd method (auto, hash, hybrid, ...)");
  const auto* schedule_flag = cli.add_string(
      "schedule", "dynamic", "column schedule (dynamic|static|nnz-balanced)");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;

  core::Options base_opts;
  try {
    // Central parsers (core/method.cpp) — no per-bench string->enum maps.
    base_opts.method = core::method_from_name(*method_flag);
    base_opts.schedule = core::schedule_from_name(*schedule_flag);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_streaming: " << e.what() << "\n";
    return 1;
  }

  bench::SampleLog log("bench_streaming");
  const std::string shape = "rows=" + std::to_string(*rows) +
                            " cols=" + std::to_string(*cols) +
                            " d=" + std::to_string(*d) +
                            " batch=" + std::to_string(*batch);

  bench::print_header(
      "Streaming accumulator vs one-shot SpKAdd",
      "paper §V batched extension as a production streaming reducer");

  std::vector<int> ks{64, 256};
  if (*full) ks.push_back(512);

  util::TablePrinter table({"pattern", "k", "strategy", "Gnnz/s",
                            "peak intermediates", "result nnz",
                            "chunks h/s/H/W/D"});
  for (const gen::Pattern pattern : {gen::Pattern::ER, gen::Pattern::RMAT}) {
    for (const int k : ks) {
      gen::WorkloadSpec spec;
      spec.pattern = pattern;
      spec.rows = *rows;
      spec.cols = *cols;
      spec.avg_nnz_per_col = *d;
      spec.k = k;
      spec.seed = 7000 + static_cast<std::uint64_t>(k);
      const auto inputs = gen::make_workload(spec);
      const std::size_t in_nnz = gen::total_input_nnz(inputs);
      const char* pname = pattern == gen::Pattern::ER ? "ER" : "RMAT";
      std::cerr << "generated " << spec.describe() << "\n";

      core::Options opts = base_opts;

      // One-shot: all k inputs live at once, single reduction. One extra
      // counted run surfaces the hybrid per-chunk kernel mix
      // (heap/spa/hash/sliding/dense) without polluting the timed laps.
      Csc one_shot;
      const double t_one = bench::time_median(static_cast<int>(*repeats), [&] {
        one_shot = core::spkadd(inputs, opts);
      });
      std::string mix = "-";
      if (opts.method == core::Method::Hybrid) {
        core::OpCounters counters;
        core::Options copts = opts;
        copts.counters = &counters;
        (void)core::spkadd(inputs, copts);
        mix = counters.chunk_mix();
      }
      table.add_row({pname, std::to_string(k), "one-shot",
                     gnnzps(in_nnz, t_one),
                     mib(inputs_bytes(inputs) + one_shot.storage_bytes()),
                     std::to_string(one_shot.nnz()), mix});
      log.add(std::string(pname) + "/k=" + std::to_string(k) + "/one-shot",
              shape, t_one, in_nnz);

      // Streaming: borrowed addends folded every `batch`; the accumulator
      // tracks its own peak intermediate footprint (running sum + owned
      // addends + persistent scratch).
      core::Accumulator<> acc(one_shot.rows(), one_shot.cols(), opts,
                              static_cast<std::size_t>(*batch));
      Csc streamed;
      const double t_stream =
          bench::time_median(static_cast<int>(*repeats), [&] {
            for (const auto& m : inputs) acc.add(m);
            streamed = acc.finalize();
          });
      table.add_row({pname, std::to_string(k), "accumulator",
                     gnnzps(in_nnz, t_stream),
                     mib(acc.stats().peak_intermediate_bytes),
                     std::to_string(streamed.nnz()), "-"});
      log.add(std::string(pname) + "/k=" + std::to_string(k) +
                  "/accumulator",
              shape, t_stream, acc.stats().peak_staged_nnz);
      if (streamed.nnz() != one_shot.nnz()) {
        std::cerr << "MISMATCH: streaming result disagrees with one-shot\n";
        return 1;
      }
    }
  }
  table.print(std::cout);

  // Schedule sweep on the most skewed stream: dynamic vs nnz-balanced.
  {
    gen::WorkloadSpec spec;
    spec.pattern = gen::Pattern::RMAT;
    spec.rows = *rows;
    spec.cols = *cols;
    spec.avg_nnz_per_col = *d;
    spec.k = 64;
    spec.seed = 9001;
    const auto inputs = gen::make_workload(spec);
    const std::size_t in_nnz = gen::total_input_nnz(inputs);
    util::TablePrinter sched({"schedule", "Gnnz/s"});
    for (const core::Schedule s :
         {core::Schedule::Dynamic, core::Schedule::NnzBalanced}) {
      core::Options opts;
      opts.method = base_opts.method;
      opts.schedule = s;
      const double t = bench::time_median(static_cast<int>(*repeats), [&] {
        (void)core::spkadd(inputs, opts);
      });
      sched.add_row({core::schedule_name(s), gnnzps(in_nnz, t)});
      log.add("RMAT/k=64/schedule=" + core::schedule_name(s), shape, t,
              in_nnz);
    }
    std::cout << "\nRMAT k=64 schedule sweep:\n";
    sched.print(std::cout);
  }

  std::cout << "\nexpected shape: accumulator throughput within a small "
               "factor of one-shot (it re-streams the running sum once per "
               "batch) at a fraction of the peak intermediate footprint; "
               "nnz-balanced meets or beats dynamic on skewed columns.\n";
  if (!json->empty() && !log.write(*json)) return 1;
  return 0;
}
